"""Rate measurement across messages and SNRs (paper §8.1 metrics).

Every code in the comparison implements :class:`RatelessScheme` — "all
codes run through the same engine".  The measured rate at an operating
point is total bits delivered / total symbols transmitted, aggregated over
messages; undecoded messages burn their symbols and deliver zero bits,
exactly as a give-up does in the paper's framework.

The engine runs messages either one at a time or in batched cohorts
(``measure_scheme(batch_size=...)``): a cohort shares one vectorised decode
pipeline (see :class:`~repro.simulation.engine.BatchSession`) while every
message keeps its own channel and RNG, so the two paths produce identical
:class:`RateMeasurement` records from the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.channels.base import Channel
from repro.channels.capacity import (
    awgn_capacity,
    bsc_capacity,
    gap_to_capacity_db,
    rayleigh_capacity,
)
from repro.core.params import DecoderParams, SpinalParams
from repro.simulation.engine import BatchSession, SpinalSession
from repro.utils.bitops import random_message

__all__ = [
    "RateMeasurement",
    "RatelessScheme",
    "SpinalScheme",
    "measure_scheme",
    "measure_spinal_rate",
    "merge_measurements",
    "run_messages",
    "snr_sweep",
]

ChannelFactory = Callable[[np.random.Generator], Channel]

#: capacity_reference -> capacity in bits/symbol from the operating point.
#: "awgn"/"rayleigh" interpret ``snr_db`` as an SNR; "bsc" interprets it as
#: the flip probability (the only operating-point knob a BSC has).
_CAPACITY_FNS = {
    "awgn": awgn_capacity,
    "bsc": bsc_capacity,
    "rayleigh": rayleigh_capacity,
}


@dataclass
class RateMeasurement:
    """Aggregated performance of one code at one operating point.

    ``capacity_reference`` names the channel family whose Shannon limit the
    relative metrics compare against: "awgn" (default), "bsc" (then
    ``snr_db`` carries the flip probability) or "rayleigh".  Comparing a
    BSC sweep against AWGN capacity silently produced wrong gaps before
    this knob existed.
    """

    label: str
    snr_db: float
    n_messages: int
    n_success: int
    total_bits: int          # bits delivered (successes only)
    total_symbols: int       # symbols transmitted (incl. failed messages)
    capacity_reference: str = "awgn"

    def __post_init__(self):
        if self.capacity_reference not in _CAPACITY_FNS:
            raise ValueError(
                f"unknown capacity reference {self.capacity_reference!r}; "
                f"expected one of {sorted(_CAPACITY_FNS)}"
            )

    @property
    def rate(self) -> float:
        """Bits per symbol (the paper's headline metric)."""
        if self.total_symbols == 0:
            return 0.0
        return self.total_bits / self.total_symbols

    @property
    def success_fraction(self) -> float:
        return self.n_success / self.n_messages if self.n_messages else 0.0

    @property
    def capacity(self) -> float:
        """Shannon limit (bits/symbol) of the reference channel here."""
        return float(_CAPACITY_FNS[self.capacity_reference](self.snr_db))

    @property
    def gap_db(self) -> float:
        """Gap to AWGN capacity at this SNR (negative; §8.1).

        Only defined against AWGN — the dB axis is an SNR shift, which has
        no meaning for a BSC flip probability; raises otherwise.
        """
        if self.capacity_reference != "awgn":
            raise ValueError(
                "gap_db is defined against AWGN capacity only; use "
                "fraction_of_capacity for "
                f"{self.capacity_reference!r} measurements"
            )
        if self.rate <= 0.0:
            return float("-inf")
        return gap_to_capacity_db(self.rate, self.snr_db)

    @property
    def fraction_of_capacity(self) -> float:
        capacity = self.capacity
        if capacity == 0.0:  # e.g. BSC at flip probability 0.5
            return 0.0 if self.rate == 0.0 else float("inf")
        return self.rate / capacity

    def as_dict(self) -> dict:
        """JSON-safe record (the experiment store's on-disk point format)."""
        return {
            "label": self.label,
            "snr_db": float(self.snr_db),
            "n_messages": int(self.n_messages),
            "n_success": int(self.n_success),
            "total_bits": int(self.total_bits),
            "total_symbols": int(self.total_symbols),
            "capacity_reference": self.capacity_reference,
            "rate": self.rate,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RateMeasurement":
        return cls(
            label=record["label"],
            snr_db=float(record["snr_db"]),
            n_messages=int(record["n_messages"]),
            n_success=int(record["n_success"]),
            total_bits=int(record["total_bits"]),
            total_symbols=int(record["total_symbols"]),
            capacity_reference=record.get("capacity_reference", "awgn"),
        )


def merge_measurements(
    measurements: Sequence["RateMeasurement"],
) -> "RateMeasurement":
    """Pool several cohorts of the *same* operating point into one record.

    This is the growth half of the adaptive-sampling API: run extra
    message cohorts (each with its own seed), then merge the counts.  All
    inputs must agree on label, operating point, and capacity reference —
    merging different points would silently average apples and oranges.
    """
    if not measurements:
        raise ValueError("need at least one measurement to merge")
    head = measurements[0]
    for m in measurements[1:]:
        if (m.label, m.snr_db, m.capacity_reference) != (
                head.label, head.snr_db, head.capacity_reference):
            raise ValueError(
                "refusing to merge measurements of different points: "
                f"{(head.label, head.snr_db, head.capacity_reference)} vs "
                f"{(m.label, m.snr_db, m.capacity_reference)}"
            )
    return RateMeasurement(
        label=head.label,
        snr_db=head.snr_db,
        n_messages=sum(m.n_messages for m in measurements),
        n_success=sum(m.n_success for m in measurements),
        total_bits=sum(m.total_bits for m in measurements),
        total_symbols=sum(m.total_symbols for m in measurements),
        capacity_reference=head.capacity_reference,
    )


class RatelessScheme:
    """One code plugged into the shared measurement engine.

    Subclasses run a single message over a fresh channel and report
    ``(bits_delivered, symbols_used)``.  Schemes that can decode many
    messages in one vectorised pipeline additionally override
    :meth:`run_cohort`.
    """

    name = "scheme"

    def run_message(
        self, channel: Channel, rng: np.random.Generator
    ) -> tuple[int, int]:
        raise NotImplementedError

    def run_cohort(
        self, channels: Sequence[Channel], rngs: Sequence[np.random.Generator]
    ) -> list[tuple[int, int]]:
        """Run one message per (channel, rng) pair; default is the scalar loop."""
        return [self.run_message(ch, rng) for ch, rng in zip(channels, rngs)]


class SpinalScheme(RatelessScheme):
    """Spinal code adapter for the shared engine.

    ``fixed_passes`` switches off ratelessness: transmit exactly that many
    passes and decode once (the "rated" curves of Figure 8-2).  ``None``
    (the default) runs the usual rateless probe-and-bisect session.
    """

    def __init__(
        self,
        params: SpinalParams,
        decoder_params: DecoderParams,
        n_bits: int,
        give_csi: bool | str = False,
        probe_growth: float = 1.5,
        label: str | None = None,
        fixed_passes: int | None = None,
    ):
        self.params = params
        self.decoder_params = decoder_params
        self.n_bits = n_bits
        self.give_csi = give_csi
        self.probe_growth = probe_growth
        self.fixed_passes = fixed_passes
        self.name = label or f"spinal n={n_bits} k={params.k} B={decoder_params.B}"

    def run_message(
        self, channel: Channel, rng: np.random.Generator
    ) -> tuple[int, int]:
        message = random_message(self.n_bits, rng)
        session = SpinalSession(
            self.params, self.decoder_params, message, channel,
            give_csi=self.give_csi, probe_growth=self.probe_growth,
        )
        if self.fixed_passes is None:
            result = session.run()
        else:
            result = session.run_fixed_rate(self.fixed_passes)
        return (self.n_bits if result.success else 0), result.n_symbols

    def run_cohort(
        self, channels: Sequence[Channel], rngs: Sequence[np.random.Generator]
    ) -> list[tuple[int, int]]:
        """Batched cohort: one vectorised decode pipeline for all messages.

        Messages are drawn per-rng in cohort order — the same draws the
        scalar loop makes — and :class:`BatchSession` falls back to scalar
        sessions itself when a channel's state is not message-private, so
        this is always result-identical to the base-class loop.
        """
        messages = np.stack([random_message(self.n_bits, rng) for rng in rngs])
        session = BatchSession(
            self.params, self.decoder_params, messages, list(channels),
            give_csi=self.give_csi, probe_growth=self.probe_growth,
        )
        if self.fixed_passes is None:
            results = session.run()
        else:
            results = session.run_fixed_rate(self.fixed_passes)
        return [
            ((self.n_bits if r.success else 0), r.n_symbols)
            for r in results
        ]


def run_messages(
    scheme: RatelessScheme,
    channel_factory: ChannelFactory,
    n_messages: int,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[tuple[int, int]]:
    """Per-message ``(bits_delivered, symbols_used)`` outcomes at one point.

    The primitive both :func:`measure_scheme` and the adaptive sampler
    build on: every message's RNG derives from the master ``seed`` in
    message order, so the outcome list is a pure function of
    ``(scheme, factory, n_messages, seed)`` regardless of batching.
    ``batch_size`` groups messages into cohorts handed to the scheme's
    :meth:`~RatelessScheme.run_cohort` (vectorised decoding for schemes
    that support it); ``None`` keeps the one-message-at-a-time loop.  Both
    paths consume the master seed identically, so the outcomes are the
    same either way.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    master = np.random.default_rng(seed)
    outcomes: list[tuple[int, int]] = []
    done = 0
    while done < n_messages:
        cohort = 1 if batch_size is None else min(batch_size, n_messages - done)
        rngs = [
            np.random.default_rng(master.integers(0, 2**63))
            for _ in range(cohort)
        ]
        channels = [channel_factory(rng) for rng in rngs]
        if batch_size is None:
            outcomes.append(scheme.run_message(channels[0], rngs[0]))
        else:
            outcomes.extend(scheme.run_cohort(channels, rngs))
        done += cohort
    return outcomes


def measure_scheme(
    scheme: RatelessScheme,
    channel_factory: ChannelFactory,
    snr_db: float,
    n_messages: int,
    seed: int = 0,
    batch_size: int | None = None,
    capacity_reference: str = "awgn",
) -> RateMeasurement:
    """Run ``n_messages`` through a scheme at one operating point.

    A thin aggregation over :func:`run_messages` (which documents the
    seeding and batching contract).
    """
    outcomes = run_messages(
        scheme, channel_factory, n_messages, seed, batch_size)
    total_bits = sum(bits for bits, _ in outcomes)
    total_symbols = sum(symbols for _, symbols in outcomes)
    n_success = sum(bits > 0 for bits, _ in outcomes)
    return RateMeasurement(
        label=scheme.name,
        snr_db=snr_db,
        n_messages=n_messages,
        n_success=n_success,
        total_bits=total_bits,
        total_symbols=total_symbols,
        capacity_reference=capacity_reference,
    )


def measure_spinal_rate(
    params: SpinalParams,
    decoder_params: DecoderParams,
    n_bits: int,
    channel_factory: ChannelFactory,
    snr_db: float,
    n_messages: int,
    seed: int = 0,
    give_csi: bool = False,
    probe_growth: float = 1.5,
    batch_size: int | None = None,
    capacity_reference: str = "awgn",
) -> RateMeasurement:
    """Convenience wrapper for spinal-only experiments."""
    scheme = SpinalScheme(
        params, decoder_params, n_bits,
        give_csi=give_csi, probe_growth=probe_growth,
    )
    return measure_scheme(
        scheme, channel_factory, snr_db, n_messages, seed,
        batch_size=batch_size, capacity_reference=capacity_reference,
    )


def snr_sweep(
    scheme: RatelessScheme,
    make_channel: Callable[[float, np.random.Generator], Channel],
    snrs_db: Sequence[float],
    n_messages: int,
    seed: int = 0,
    batch_size: int | None = None,
    capacity_reference: str = "awgn",
) -> list[RateMeasurement]:
    """Measure a scheme across an SNR range (1 dB steps in the paper)."""
    out = []
    for i, snr in enumerate(snrs_db):
        factory = lambda rng, s=snr: make_channel(s, rng)  # noqa: E731
        out.append(
            measure_scheme(
                scheme, factory, snr, n_messages, seed=seed + 7919 * i,
                batch_size=batch_size, capacity_reference=capacity_reference,
            )
        )
    return out
