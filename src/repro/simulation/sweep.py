"""Rate measurement across messages and SNRs (paper §8.1 metrics).

Every code in the comparison implements :class:`RatelessScheme` — "all
codes run through the same engine".  The measured rate at an operating
point is total bits delivered / total symbols transmitted, aggregated over
messages; undecoded messages burn their symbols and deliver zero bits,
exactly as a give-up does in the paper's framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.channels.base import Channel
from repro.channels.capacity import awgn_capacity, gap_to_capacity_db
from repro.core.params import DecoderParams, SpinalParams
from repro.simulation.engine import SpinalSession
from repro.utils.bitops import random_message

__all__ = [
    "RateMeasurement",
    "RatelessScheme",
    "SpinalScheme",
    "measure_scheme",
    "measure_spinal_rate",
    "snr_sweep",
]

ChannelFactory = Callable[[np.random.Generator], Channel]


@dataclass
class RateMeasurement:
    """Aggregated performance of one code at one operating point."""

    label: str
    snr_db: float
    n_messages: int
    n_success: int
    total_bits: int          # bits delivered (successes only)
    total_symbols: int       # symbols transmitted (incl. failed messages)

    @property
    def rate(self) -> float:
        """Bits per symbol (the paper's headline metric)."""
        if self.total_symbols == 0:
            return 0.0
        return self.total_bits / self.total_symbols

    @property
    def success_fraction(self) -> float:
        return self.n_success / self.n_messages if self.n_messages else 0.0

    @property
    def gap_db(self) -> float:
        """Gap to AWGN capacity at this SNR (negative; §8.1)."""
        if self.rate <= 0.0:
            return float("-inf")
        return gap_to_capacity_db(self.rate, self.snr_db)

    @property
    def fraction_of_capacity(self) -> float:
        return self.rate / awgn_capacity(self.snr_db)


class RatelessScheme:
    """One code plugged into the shared measurement engine.

    Subclasses run a single message over a fresh channel and report
    ``(bits_delivered, symbols_used)``.
    """

    name = "scheme"

    def run_message(
        self, channel: Channel, rng: np.random.Generator
    ) -> tuple[int, int]:
        raise NotImplementedError


class SpinalScheme(RatelessScheme):
    """Spinal code adapter for the shared engine."""

    def __init__(
        self,
        params: SpinalParams,
        decoder_params: DecoderParams,
        n_bits: int,
        give_csi: bool = False,
        probe_growth: float = 1.5,
        label: str | None = None,
    ):
        self.params = params
        self.decoder_params = decoder_params
        self.n_bits = n_bits
        self.give_csi = give_csi
        self.probe_growth = probe_growth
        self.name = label or f"spinal n={n_bits} k={params.k} B={decoder_params.B}"

    def run_message(
        self, channel: Channel, rng: np.random.Generator
    ) -> tuple[int, int]:
        message = random_message(self.n_bits, rng)
        session = SpinalSession(
            self.params, self.decoder_params, message, channel,
            give_csi=self.give_csi, probe_growth=self.probe_growth,
        )
        result = session.run()
        return (self.n_bits if result.success else 0), result.n_symbols


def measure_scheme(
    scheme: RatelessScheme,
    channel_factory: ChannelFactory,
    snr_db: float,
    n_messages: int,
    seed: int = 0,
) -> RateMeasurement:
    """Run ``n_messages`` through a scheme at one operating point."""
    master = np.random.default_rng(seed)
    total_bits = 0
    total_symbols = 0
    n_success = 0
    for _ in range(n_messages):
        rng = np.random.default_rng(master.integers(0, 2**63))
        channel = channel_factory(rng)
        bits, symbols = scheme.run_message(channel, rng)
        total_bits += bits
        total_symbols += symbols
        n_success += bits > 0
    return RateMeasurement(
        label=scheme.name,
        snr_db=snr_db,
        n_messages=n_messages,
        n_success=n_success,
        total_bits=total_bits,
        total_symbols=total_symbols,
    )


def measure_spinal_rate(
    params: SpinalParams,
    decoder_params: DecoderParams,
    n_bits: int,
    channel_factory: ChannelFactory,
    snr_db: float,
    n_messages: int,
    seed: int = 0,
    give_csi: bool = False,
    probe_growth: float = 1.5,
) -> RateMeasurement:
    """Convenience wrapper for spinal-only experiments."""
    scheme = SpinalScheme(
        params, decoder_params, n_bits,
        give_csi=give_csi, probe_growth=probe_growth,
    )
    return measure_scheme(scheme, channel_factory, snr_db, n_messages, seed)


def snr_sweep(
    scheme: RatelessScheme,
    make_channel: Callable[[float, np.random.Generator], Channel],
    snrs_db: Sequence[float],
    n_messages: int,
    seed: int = 0,
) -> list[RateMeasurement]:
    """Measure a scheme across an SNR range (1 dB steps in the paper)."""
    out = []
    for i, snr in enumerate(snrs_db):
        factory = lambda rng, s=snr: make_channel(s, rng)  # noqa: E731
        out.append(
            measure_scheme(scheme, factory, snr, n_messages, seed=seed + 7919 * i)
        )
    return out
