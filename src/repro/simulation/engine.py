"""Rateless sessions: encoder -> channel -> bubble decoder.

The paper's receiver attempts a decode after (roughly) every punctured
subpass and stops at the first success (§5, §8.4).  Replaying a decode
attempt after literally every subpass is what the hardware does, but in a
software harness the cost of attempts dominates; this engine instead finds
the *same answer* — the minimal number of subpasses after which decoding
succeeds — with geometric probing followed by bisection.  Decode success is
(near-)monotone in the received prefix, so the bisected minimum matches the
exhaustive scan with overwhelming probability while running ~5x fewer
attempts.  (Set ``probe_growth=1`` to force the exhaustive per-subpass scan
the paper describes.)

Each session owns **one** incremental :class:`ReceivedSymbols` store:
subpasses are appended as they are transmitted and every decode attempt
reads an O(1) prefix view of the store (a per-subpass checkpoint cursor),
so probing and bisection never rebuild symbol storage.

:class:`BatchSession` runs M independent messages as one cohort: at every
probe point all still-undecoded messages are decoded together by a
:class:`~repro.core.decoder.BatchBubbleDecoder` (and bisection steps are
grouped by probe point), which amortises the per-step numpy call overhead
over the whole cohort.  The batch path requires **per-message channel
ownership** (``Channel.private_state``, and no instance shared between
rows): each message's channel state and RNG stream must be a pure function
of that message's own transmit sequence, which the cohort preserves — a
row transmits the same subpass blocks, in the same order, as its scalar
twin, and leaves the cohort at exactly the subpass where the scalar
session would stop.  That makes stateful-but-private models (Rayleigh
block fading, whose coherence block spans transmit calls) batchable, and
CSI-consuming decodes batch too: the store carries a per-message CSI plane
and the batch decoder the coherent ``|y - h x|^2`` metric (the "phase"
policy derotates at receive time, exactly as the scalar receiver does).
Only channels whose state is coupled *across* instances — the
shared-medium symbol clock — fall back to per-message scalar
:class:`SpinalSession` runs, preserving results exactly at scalar speed.

Success is judged against the transmitted message (oracle mode, standard
for rate curves — it measures code performance without protocol overhead).
CRC-based realistic framing lives in :mod:`repro.core.framing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channels.base import Channel, ChannelOutput, transmit_batch
from repro.core.decoder import BatchBubbleDecoder, BubbleDecoder
from repro.core.encoder import BatchSpinalEncoder, SpinalEncoder
from repro.core.params import DecoderParams, SpinalParams
from repro.core.symbols import BatchReceivedSymbols, ReceivedSymbols
from repro.obs import OBS

__all__ = [
    "SpinalSession",
    "BatchSession",
    "SessionResult",
    "csi_mode",
    "received_view",
    "probe_schedule",
]


def csi_mode(give_csi: bool | str) -> str:
    """Normalise the CSI knob: True -> 'full', False -> 'none'."""
    if give_csi is True:
        return "full"
    if give_csi is False:
        return "none"
    if give_csi in ("full", "phase", "none"):
        return give_csi
    raise ValueError(f"unknown CSI mode {give_csi!r}")


def received_view(out: ChannelOutput, mode: str) -> tuple[np.ndarray, np.ndarray | None]:
    """What the receiver actually sees under a CSI policy.

    Returns ``(values, csi)``: with ``"full"`` CSI the decoder is shown the
    exact per-symbol coefficients (Figure 8-4); with ``"phase"`` the carrier
    is recovered (derotation) but amplitude stays unknown (Figure 8-5); with
    ``"none"`` the raw observations are decoded as plain AWGN.  Shared by the
    single-message engine and the packet link layer so both receivers treat
    fading identically.
    """
    values, csi = out.values, None
    if out.csi is not None:
        if mode == "full":
            csi = out.csi
        elif mode == "phase":
            # Carrier recovery: derotate, stay blind to |h|.
            values = values * np.exp(-1j * np.angle(out.csi))
    return values, csi


def probe_schedule(probe_growth: float, max_subpasses: int) -> list[int]:
    """Subpass counts at which a session attempts a decode.

    The schedule is the same for every message at an operating point, which
    is what lets :class:`BatchSession` decode a whole cohort per probe.
    """
    schedule: list[int] = []
    g = 1
    while g <= max_subpasses:
        schedule.append(g)
        if probe_growth == 1.0:
            g += 1
        else:
            nxt = min(max(g + 1, math.ceil(g * probe_growth)), max_subpasses)
            if nxt == g:
                break
            g = nxt
    return schedule


@dataclass
class SessionResult:
    """Outcome of transmitting one message ratelessly."""

    success: bool
    n_symbols: int          # symbols consumed (minimal prefix on success)
    n_subpasses: int        # subpasses consumed
    n_bits: int             # message length
    n_attempts: int         # decode attempts executed
    path_cost: float = float("nan")

    @property
    def rate(self) -> float:
        """Bits per symbol delivered (0 when the message was given up)."""
        if not self.success or self.n_symbols == 0:
            return 0.0
        return self.n_bits / self.n_symbols


class SpinalSession:
    """Drives one message through the rateless loop.

    Parameters
    ----------
    params, decoder_params: code and decoder configuration.
    message_bits: the n-bit message to convey.
    channel: a :class:`repro.channels.Channel`; transmitted through in
        subpass order so stateful models (fading) behave correctly.
    give_csi: CSI available to the decoder when the channel reports
        coefficients: ``True``/"full" = exact per-symbol h (Figure 8-4);
        "phase" = carrier-phase recovery only, amplitude unknown — the
        realistic "no detailed fading information" receiver of Figure 8-5;
        ``False``/"none" = decode the raw observations as plain AWGN.
    probe_growth: geometric factor for the decode-attempt schedule
        (1 = attempt after every subpass, exactly as in the paper).
    """

    def __init__(
        self,
        params: SpinalParams,
        decoder_params: DecoderParams,
        message_bits: np.ndarray,
        channel: Channel,
        give_csi: bool | str = False,
        probe_growth: float = 1.5,
    ):
        self.params = params
        self.dec = decoder_params
        self.message_bits = np.asarray(message_bits, dtype=np.uint8)
        self.channel = channel
        self.csi_mode = csi_mode(give_csi)
        if probe_growth < 1.0:
            raise ValueError("probe_growth must be >= 1")
        self.probe_growth = probe_growth
        self.encoder = SpinalEncoder(params, self.message_bits)
        self.decoder = BubbleDecoder(params, decoder_params, self.message_bits.size)
        # One incremental store for the whole session; decode attempts read
        # prefix views through these per-subpass checkpoints instead of
        # rebuilding symbol storage per attempt.
        self._store = ReceivedSymbols(
            self.encoder.n_spine, complex_valued=not self.params.is_bsc
        )
        self._checkpoints = [self._store.checkpoint()]
        self._cum_symbols = [0]
        self._n_attempts = 0
        self._last_cost = float("nan")

    # -- transmission ----------------------------------------------------

    @property
    def _n_subpasses_stored(self) -> int:
        return len(self._checkpoints) - 1

    def _ensure_subpasses(self, count: int) -> None:
        """Transmit through the channel up to ``count`` subpasses."""
        while self._n_subpasses_stored < count:
            block = self.encoder.generate(self._n_subpasses_stored)
            out = self.channel.transmit(block.values)
            values, csi = received_view(out, self.csi_mode)
            self._store.add_block(block.spine_indices, block.slots, values, csi=csi)
            self._checkpoints.append(self._store.checkpoint())
            self._cum_symbols.append(self._cum_symbols[-1] + len(block))

    def _symbols_in(self, n_subpasses: int) -> int:
        return self._cum_symbols[n_subpasses]

    # -- decoding --------------------------------------------------------

    def _attempt(self, n_subpasses: int) -> bool:
        """Decode from the first ``n_subpasses`` subpasses."""
        self._ensure_subpasses(n_subpasses)
        view = self._store.prefix(self._checkpoints[n_subpasses])
        OBS.counter("decode.attempts")
        with OBS.timer("decode.attempt"):
            result = self.decoder.decode(view)
        self._n_attempts += 1
        self._last_cost = result.path_cost
        return result.matches(self.message_bits)

    def run(self) -> SessionResult:
        """Rateless transmission until decoded or ``max_passes`` exhausted."""
        w = self.encoder.subpasses_per_pass
        max_subpasses = self.dec.max_passes * w

        # Geometric probe for the first success (shared schedule with the
        # batch engine — the bit-identical contract depends on it).
        lo = 0  # highest known-failing subpass count
        hi = None
        for g in probe_schedule(self.probe_growth, max_subpasses):
            if self._attempt(g):
                hi = g
                break
            lo = g

        if hi is None:
            self._ensure_subpasses(max_subpasses)
            return SessionResult(
                success=False,
                n_symbols=self._symbols_in(max_subpasses),
                n_subpasses=max_subpasses,
                n_bits=self.message_bits.size,
                n_attempts=self._n_attempts,
            )

        # Bisect for the minimal successful prefix in (lo, hi].
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._attempt(mid):
                hi = mid
            else:
                lo = mid
        return SessionResult(
            success=True,
            n_symbols=self._symbols_in(hi),
            n_subpasses=hi,
            n_bits=self.message_bits.size,
            n_attempts=self._n_attempts,
            path_cost=self._last_cost,
        )

    def run_fixed_rate(self, n_passes: int) -> SessionResult:
        """Fixed-rate variant (Figure 8-2): send exactly L passes, decode once."""
        w = self.encoder.subpasses_per_pass
        n_subpasses = n_passes * w
        ok = self._attempt(n_subpasses)
        return SessionResult(
            success=ok,
            n_symbols=self._symbols_in(n_subpasses),
            n_subpasses=n_subpasses,
            n_bits=self.message_bits.size,
            n_attempts=self._n_attempts,
            path_cost=self._last_cost,
        )


class BatchSession:
    """Runs M independent rateless sessions as one decode cohort.

    Every message gets its own channel (and therefore its own noise
    stream); the decode pipeline is shared.  At each probe point of the
    common schedule, all still-undecoded messages are decoded in one
    batched bubble search; bisection steps are grouped by probe point the
    same way.  Per message, the outcome is **bit-identical** to running
    :class:`SpinalSession` on the same (message, channel) pair: same
    success flags, symbol counts, attempt counts and path costs.

    Channels must be per-message (``Channel.private_state``, one distinct
    instance per row) for the batch path — stateful-but-private models
    (block fading) and CSI-consuming decodes batch fine; cohorts containing
    cross-message state (shared-medium channels, or one instance reused
    across rows) are transparently run through per-message scalar sessions
    instead — see the module docstring for why.

    Parameters
    ----------
    params, decoder_params: code and decoder configuration.
    messages: uint8 array of shape (M, n_bits).
    channels: one :class:`~repro.channels.base.Channel` per message.
    give_csi, probe_growth: as in :class:`SpinalSession`.
    """

    def __init__(
        self,
        params: SpinalParams,
        decoder_params: DecoderParams,
        messages: np.ndarray,
        channels: list[Channel],
        give_csi: bool | str = False,
        probe_growth: float = 1.5,
    ):
        self.params = params
        self.dec = decoder_params
        self.messages = np.atleast_2d(np.asarray(messages, dtype=np.uint8))
        if len(channels) != self.messages.shape[0]:
            raise ValueError("one channel per message required")
        self.channels = list(channels)
        self.csi_mode = csi_mode(give_csi)
        if probe_growth < 1.0:
            raise ValueError("probe_growth must be >= 1")
        self.probe_growth = probe_growth

    @property
    def n_messages(self) -> int:
        return self.messages.shape[0]

    def _can_batch(self) -> bool:
        # The real precondition is per-message channel ownership: a row's
        # transmit stream must depend only on its own call sequence (which
        # the cohort reproduces exactly), so stateful-but-private models
        # like block fading batch fine.  Shared-state channels cannot, and
        # neither can one instance reused across rows — interleaved cohort
        # transmits would consume its RNG/state in a different order than
        # M sequential scalar sessions.  The cohort must also be
        # CSI-homogeneous (the batch store's CSI plane is all-or-nothing
        # across rows); mixed-family cohorts are fine per message, so they
        # take the scalar path.
        return (all(ch.private_state for ch in self.channels)
                and len({id(ch) for ch in self.channels}) == self.n_messages
                and len({ch.reports_csi for ch in self.channels}) == 1)

    def _run_scalar(
        self, fixed_passes: int | None = None
    ) -> list[SessionResult]:
        """Per-message fallback: exact scalar semantics, scalar speed."""
        out: list[SessionResult] = []
        for m in range(self.n_messages):
            session = SpinalSession(
                self.params, self.dec, self.messages[m], self.channels[m],
                give_csi=self.csi_mode, probe_growth=self.probe_growth,
            )
            out.append(session.run() if fixed_passes is None
                       else session.run_fixed_rate(fixed_passes))
        return out

    def _make_pipeline(
        self,
    ) -> tuple[BatchSpinalEncoder, BatchBubbleDecoder, BatchReceivedSymbols]:
        """The shared encoder/decoder/store triple of one batched cohort."""
        encoder = BatchSpinalEncoder(self.params, self.messages)
        decoder = BatchBubbleDecoder(
            self.params, self.dec, self.messages.shape[1]
        )
        store = BatchReceivedSymbols(
            encoder.n_spine, self.n_messages,
            complex_valued=not self.params.is_bsc,
        )
        return encoder, decoder, store

    def run(self) -> list[SessionResult]:
        """Rateless transmission of the cohort; one result per message."""
        if not self._can_batch():
            return self._run_scalar()

        M = self.n_messages
        encoder, decoder, store = self._make_pipeline()
        checkpoints = [store.checkpoint()]
        cum_symbols = [0]
        w = encoder.subpasses_per_pass
        max_subpasses = self.dec.max_passes * w

        def ensure(rows: np.ndarray, count: int) -> None:
            """Transmit up to ``count`` subpasses for the messages in rows.

            Only still-active rows transmit — a decoded message's channel
            stops drawing noise at exactly the subpass where its scalar
            twin would have stopped.
            """
            while len(checkpoints) - 1 < count:
                block = encoder.generate_batch(len(checkpoints) - 1, rows=rows)
                received = transmit_batch(
                    [self.channels[m] for m in rows], block.values
                )
                values, csi = received_view(received, self.csi_mode)
                store.add_block(
                    block.spine_indices, block.slots, values,
                    rows=rows, csi=csi,
                )
                checkpoints.append(store.checkpoint())
                cum_symbols.append(cum_symbols[-1] + len(block))

        n_attempts = np.zeros(M, dtype=np.int64)
        last_cost = np.full(M, float("nan"))
        lo = np.zeros(M, dtype=np.int64)
        hi: list[int | None] = [None] * M

        def attempt(rows: np.ndarray, n_subpasses: int) -> np.ndarray:
            """Batched decode of ``rows`` at a prefix; returns success mask."""
            view = store.prefix(rows, checkpoints[n_subpasses])
            OBS.counter("decode.attempts", rows.size)
            with OBS.span("decode.cohort", rows=int(rows.size),
                          subpasses=int(n_subpasses)):
                results = decoder.decode_batch(view)
            ok = np.zeros(rows.size, dtype=bool)
            for j, m in enumerate(rows):
                n_attempts[m] += 1
                last_cost[m] = results[j].path_cost
                ok[j] = results[j].matches(self.messages[m])
            return ok

        # Geometric probing, whole cohort at a time.
        active = np.arange(M, dtype=np.intp)
        for g in probe_schedule(self.probe_growth, max_subpasses):
            if active.size == 0:
                break
            ensure(active, g)
            ok = attempt(active, g)
            for m in active[ok]:
                hi[m] = g
            lo[active[~ok]] = g
            active = active[~ok]

        # Bisection, grouped by probe point so equal mids share one decode.
        pending = [m for m in range(M) if hi[m] is not None]
        while True:
            mids: dict[int, list[int]] = {}
            for m in pending:
                if hi[m] - lo[m] > 1:
                    mids.setdefault((lo[m] + hi[m]) // 2, []).append(m)
            if not mids:
                break
            for mid, members in sorted(mids.items()):
                rows = np.asarray(members, dtype=np.intp)
                ok = attempt(rows, mid)
                for j, m in enumerate(members):
                    if ok[j]:
                        hi[m] = mid
                    else:
                        lo[m] = mid

        n_bits = self.messages.shape[1]
        results: list[SessionResult] = []
        for m in range(M):
            if hi[m] is None:
                results.append(SessionResult(
                    success=False,
                    n_symbols=cum_symbols[max_subpasses],
                    n_subpasses=max_subpasses,
                    n_bits=n_bits,
                    n_attempts=int(n_attempts[m]),
                ))
            else:
                results.append(SessionResult(
                    success=True,
                    n_symbols=cum_symbols[hi[m]],
                    n_subpasses=hi[m],
                    n_bits=n_bits,
                    n_attempts=int(n_attempts[m]),
                    path_cost=float(last_cost[m]),
                ))
        return results

    def run_fixed_rate(self, n_passes: int) -> list[SessionResult]:
        """Fixed-rate cohort (Figure 8-2): L passes each, one batched decode.

        Per message, bit-identical to
        :meth:`SpinalSession.run_fixed_rate` on the same (message, channel)
        pair — every row transmits the same L passes its scalar twin would,
        then the whole cohort decodes once.
        """
        if not self._can_batch():
            return self._run_scalar(fixed_passes=n_passes)

        M = self.n_messages
        encoder, decoder, store = self._make_pipeline()
        n_subpasses = n_passes * encoder.subpasses_per_pass
        rows = np.arange(M, dtype=np.intp)
        n_symbols = 0
        for g in range(n_subpasses):
            block = encoder.generate_batch(g, rows=rows)
            received = transmit_batch(self.channels, block.values)
            values, csi = received_view(received, self.csi_mode)
            store.add_block(
                block.spine_indices, block.slots, values, rows=rows, csi=csi
            )
            n_symbols += len(block)
        OBS.counter("decode.attempts", M)
        with OBS.span("decode.cohort", rows=M, subpasses=n_subpasses):
            results = decoder.decode_batch(
                store.prefix(rows, store.checkpoint()))
        n_bits = self.messages.shape[1]
        return [
            SessionResult(
                success=results[m].matches(self.messages[m]),
                n_symbols=n_symbols,
                n_subpasses=n_subpasses,
                n_bits=n_bits,
                n_attempts=1,
                path_cost=results[m].path_cost,
            )
            for m in range(M)
        ]
