"""Single-message rateless session: encoder -> channel -> bubble decoder.

The paper's receiver attempts a decode after (roughly) every punctured
subpass and stops at the first success (§5, §8.4).  Replaying a decode
attempt after literally every subpass is what the hardware does, but in a
software harness the cost of attempts dominates; this engine instead finds
the *same answer* — the minimal number of subpasses after which decoding
succeeds — with geometric probing followed by bisection.  Decode success is
(near-)monotone in the received prefix, so the bisected minimum matches the
exhaustive scan with overwhelming probability while running ~5x fewer
attempts.  (Set ``probe_growth=1`` to force the exhaustive per-subpass scan
the paper describes.)

Success is judged against the transmitted message (oracle mode, standard
for rate curves — it measures code performance without protocol overhead).
CRC-based realistic framing lives in :mod:`repro.core.framing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channels.base import Channel, ChannelOutput
from repro.core.decoder import BubbleDecoder
from repro.core.encoder import SpinalEncoder
from repro.core.params import DecoderParams, SpinalParams
from repro.core.symbols import ReceivedSymbols

__all__ = ["SpinalSession", "SessionResult", "csi_mode", "received_view"]


def csi_mode(give_csi: bool | str) -> str:
    """Normalise the CSI knob: True -> 'full', False -> 'none'."""
    if give_csi is True:
        return "full"
    if give_csi is False:
        return "none"
    if give_csi in ("full", "phase", "none"):
        return give_csi
    raise ValueError(f"unknown CSI mode {give_csi!r}")


def received_view(out: ChannelOutput, mode: str) -> tuple[np.ndarray, np.ndarray | None]:
    """What the receiver actually sees under a CSI policy.

    Returns ``(values, csi)``: with ``"full"`` CSI the decoder is shown the
    exact per-symbol coefficients (Figure 8-4); with ``"phase"`` the carrier
    is recovered (derotation) but amplitude stays unknown (Figure 8-5); with
    ``"none"`` the raw observations are decoded as plain AWGN.  Shared by the
    single-message engine and the packet link layer so both receivers treat
    fading identically.
    """
    values, csi = out.values, None
    if out.csi is not None:
        if mode == "full":
            csi = out.csi
        elif mode == "phase":
            # Carrier recovery: derotate, stay blind to |h|.
            values = values * np.exp(-1j * np.angle(out.csi))
    return values, csi


@dataclass
class SessionResult:
    """Outcome of transmitting one message ratelessly."""

    success: bool
    n_symbols: int          # symbols consumed (minimal prefix on success)
    n_subpasses: int        # subpasses consumed
    n_bits: int             # message length
    n_attempts: int         # decode attempts executed
    path_cost: float = float("nan")

    @property
    def rate(self) -> float:
        """Bits per symbol delivered (0 when the message was given up)."""
        if not self.success or self.n_symbols == 0:
            return 0.0
        return self.n_bits / self.n_symbols


class SpinalSession:
    """Drives one message through the rateless loop.

    Parameters
    ----------
    params, decoder_params: code and decoder configuration.
    message_bits: the n-bit message to convey.
    channel: a :class:`repro.channels.Channel`; transmitted through in
        subpass order so stateful models (fading) behave correctly.
    give_csi: CSI available to the decoder when the channel reports
        coefficients: ``True``/"full" = exact per-symbol h (Figure 8-4);
        "phase" = carrier-phase recovery only, amplitude unknown — the
        realistic "no detailed fading information" receiver of Figure 8-5;
        ``False``/"none" = decode the raw observations as plain AWGN.
    probe_growth: geometric factor for the decode-attempt schedule
        (1 = attempt after every subpass, exactly as in the paper).
    """

    def __init__(
        self,
        params: SpinalParams,
        decoder_params: DecoderParams,
        message_bits: np.ndarray,
        channel: Channel,
        give_csi: bool | str = False,
        probe_growth: float = 1.5,
    ):
        self.params = params
        self.dec = decoder_params
        self.message_bits = np.asarray(message_bits, dtype=np.uint8)
        self.channel = channel
        self.csi_mode = csi_mode(give_csi)
        if probe_growth < 1.0:
            raise ValueError("probe_growth must be >= 1")
        self.probe_growth = probe_growth
        self.encoder = SpinalEncoder(params, self.message_bits)
        self.decoder = BubbleDecoder(params, decoder_params, self.message_bits.size)
        self._blocks: list[tuple] = []  # (SymbolBlock, noisy values, csi)
        self._n_attempts = 0
        self._last_cost = float("nan")

    # -- transmission ----------------------------------------------------

    def _ensure_subpasses(self, count: int) -> None:
        """Transmit through the channel up to ``count`` subpasses."""
        while len(self._blocks) < count:
            g = len(self._blocks)
            block = self.encoder.generate(g)
            out = self.channel.transmit(block.values)
            values, csi = received_view(out, self.csi_mode)
            self._blocks.append((block, values, csi))

    def _symbols_in(self, n_subpasses: int) -> int:
        return sum(len(b[0]) for b in self._blocks[:n_subpasses])

    # -- decoding --------------------------------------------------------

    def _attempt(self, n_subpasses: int) -> bool:
        """Decode from the first ``n_subpasses`` subpasses."""
        self._ensure_subpasses(n_subpasses)
        store = ReceivedSymbols(
            self.encoder.n_spine, complex_valued=not self.params.is_bsc
        )
        for block, values, csi in self._blocks[:n_subpasses]:
            store.add_block(block.spine_indices, block.slots, values, csi=csi)
        result = self.decoder.decode(store)
        self._n_attempts += 1
        self._last_cost = result.path_cost
        return result.matches(self.message_bits)

    def run(self) -> SessionResult:
        """Rateless transmission until decoded or ``max_passes`` exhausted."""
        w = self.encoder.subpasses_per_pass
        max_subpasses = self.dec.max_passes * w

        # Geometric probe for the first success.
        lo = 0  # highest known-failing subpass count
        g = 1
        hi = None
        while g <= max_subpasses:
            if self._attempt(g):
                hi = g
                break
            lo = g
            if self.probe_growth == 1.0:
                g += 1
            else:
                g = min(max(g + 1, math.ceil(g * self.probe_growth)),
                        max_subpasses)
                if g == lo:  # already at the cap and it failed
                    break

        if hi is None:
            self._ensure_subpasses(max_subpasses)
            return SessionResult(
                success=False,
                n_symbols=self._symbols_in(max_subpasses),
                n_subpasses=max_subpasses,
                n_bits=self.message_bits.size,
                n_attempts=self._n_attempts,
            )

        # Bisect for the minimal successful prefix in (lo, hi].
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._attempt(mid):
                hi = mid
            else:
                lo = mid
        return SessionResult(
            success=True,
            n_symbols=self._symbols_in(hi),
            n_subpasses=hi,
            n_bits=self.message_bits.size,
            n_attempts=self._n_attempts,
            path_cost=self._last_cost,
        )

    def run_fixed_rate(self, n_passes: int) -> SessionResult:
        """Fixed-rate variant (Figure 8-2): send exactly L passes, decode once."""
        w = self.encoder.subpasses_per_pass
        n_subpasses = n_passes * w
        ok = self._attempt(n_subpasses)
        return SessionResult(
            success=ok,
            n_symbols=self._symbols_in(n_subpasses),
            n_subpasses=n_subpasses,
            n_bits=self.message_bits.size,
            n_attempts=self._n_attempts,
            path_cost=self._last_cost,
        )
