"""Rateless execution engine and experiment harness (paper §8.1).

"A generic rateless execution engine regulates the streaming of symbols
across processing elements from the encoder, through the mapper, channel
simulator, and demapper, to the decoder, and collects performance
statistics.  All codes run through the same engine."
"""

from repro.simulation.engine import BatchSession, SessionResult, SpinalSession
from repro.simulation.sweep import (
    RateMeasurement,
    RatelessScheme,
    SpinalScheme,
    measure_scheme,
    measure_spinal_rate,
    merge_measurements,
    run_messages,
    snr_sweep,
)

__all__ = [
    "SpinalSession",
    "BatchSession",
    "SessionResult",
    "RateMeasurement",
    "RatelessScheme",
    "SpinalScheme",
    "measure_scheme",
    "measure_spinal_rate",
    "merge_measurements",
    "run_messages",
    "snr_sweep",
]
