"""Thin shim so legacy editable installs work in offline environments
that lack the `wheel` package (PEP 517 builds need bdist_wheel).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
