"""Decoder scaling: rate vs compute budget on the same transmission (§7).

Run:  python examples/parameter_exploration.py

"An attractive property of spinal codes is that ... the rate achieved
under any given set of channel conditions depends only on the decoder's
computational capabilities.  The same encoded transmission can achieve a
higher rate at a decoder that invests a greater amount of computation."

This example transmits one message once, then decodes the SAME stored
symbols with bubble decoders of increasing beam width B — a base station
versus a phone — and prints the smallest prefix each can decode from.
It also prints the Theorem 1 guarantee for reference.
"""


from repro import AWGNChannel, BubbleDecoder, DecoderParams, SpinalParams, SpinalEncoder
from repro.channels.capacity import awgn_capacity
from repro.core.symbols import ReceivedSymbols
from repro.theory import achievable_rate_bound
from repro.utils.bitops import random_message

SNR_DB = 12.0
N_BITS = 256


def main() -> None:
    params = SpinalParams()
    message = random_message(N_BITS, rng=3)
    encoder = SpinalEncoder(params, message)
    channel = AWGNChannel(SNR_DB, rng=4)

    # One transmission, stored at the receiver (the paper's §6 receiver
    # keeps all symbols until the message decodes).
    n_subpasses = 8 * 12
    blocks = []
    for g in range(n_subpasses):
        block = encoder.generate(g)
        out = channel.transmit(block.values)
        blocks.append((block, out.values))

    print(f"SNR {SNR_DB:.0f} dB, capacity {awgn_capacity(SNR_DB):.2f} "
          f"bits/symbol; theorem-1 bound (c=6): "
          f"{achievable_rate_bound(6, SNR_DB):.2f} bits/symbol\n")
    print(f"{'B':>5} {'decoded at':>11} {'rate':>6}   receiver class")
    labels = {1: "toaster", 4: "FPGA prototype", 16: "phone",
              64: "laptop", 256: "base station"}
    for b in (1, 4, 16, 64, 256):
        decoder = BubbleDecoder(params, DecoderParams(B=b), N_BITS)
        decoded_at = None
        for g in range(1, n_subpasses + 1):
            store = ReceivedSymbols(encoder.n_spine)
            n_symbols = 0
            for block, values in blocks[:g]:
                store.add_block(block.spine_indices, block.slots, values)
                n_symbols += len(block)
            if decoder.decode(store).matches(message):
                decoded_at = n_symbols
                break
        if decoded_at is None:
            print(f"{b:>5} {'never':>11} {'-':>6}   {labels[b]}")
        else:
            rate = N_BITS / decoded_at
            print(f"{b:>5} {decoded_at:>11} {rate:>6.2f}   {labels[b]}")

    print("\nSame transmitter, same symbols — only the receiver's compute "
          "budget changed. No negotiation needed (§7).")


if __name__ == "__main__":
    main()
