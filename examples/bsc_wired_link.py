"""Spinal codes over a bit-flip channel (BSC mode, §3.3).

Run:  python examples/bsc_wired_link.py

The same construction works on hard-decision channels: c = 1, the sender
transmits RNG output bits directly, and the bubble decoder swaps squared
distance for Hamming distance.  This example sweeps flip probabilities and
plots achieved rate against the BSC capacity 1 - H(p) — the setting of the
paper's §4.6 capacity claim.
"""

from repro import BSCChannel, DecoderParams, bsc_capacity
from repro.core.params import SpinalParams
from repro.simulation import SpinalScheme, measure_scheme


def main() -> None:
    params = SpinalParams.bsc()  # k=4, c=1, bit mapping
    dec = DecoderParams(B=256, max_passes=64)
    scheme = SpinalScheme(params, dec, n_bits=256)

    print(f"{'p(flip)':>8} {'capacity':>9} {'rate':>7} {'efficiency':>11}")
    for p in (0.01, 0.03, 0.05, 0.1, 0.2):
        m = measure_scheme(
            scheme, lambda rng, pp=p: BSCChannel(pp, rng=rng),
            snr_db=0.0, n_messages=3, seed=int(p * 1000),
        )
        cap = bsc_capacity(p)
        eff = m.rate / cap if cap else 0.0
        print(f"{p:>8.2f} {cap:>9.3f} {m.rate:>7.3f} {eff:>10.0%}")

    print("\nNote: rate never exceeds 1 - H(p); the fraction achieved "
          "grows with B (the decoder's compute budget), per §7.")


if __name__ == "__main__":
    main()
