"""Quickstart: send one message over a noisy channel with spinal codes.

Run:  python examples/quickstart.py [snr_db]

Walks the full paper pipeline on a single message: build the spine, stream
punctured symbols through an AWGN channel, bubble-decode after every
subpass, and report the achieved rate against the Shannon limit.
"""

import sys

import numpy as np

from repro import (
    AWGNChannel,
    DecoderParams,
    SpinalParams,
    SpinalSession,
    awgn_capacity,
    gap_to_capacity_db,
)
from repro.utils.bitops import random_message


def main() -> None:
    snr_db = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0

    # The paper's default configuration (§7.1): k=4, c=6, B=256, d=1,
    # two tail symbols, 8-way puncturing.
    params = SpinalParams()
    decoder = DecoderParams(B=256, d=1, max_passes=48)

    message = random_message(256, rng=1)
    channel = AWGNChannel(snr_db, rng=2)
    session = SpinalSession(params, decoder, message, channel)
    result = session.run()

    print(f"message bits     : {result.n_bits}")
    print(f"channel SNR      : {snr_db:.1f} dB "
          f"(capacity {awgn_capacity(snr_db):.2f} bits/symbol)")
    if result.success:
        print(f"decoded after    : {result.n_symbols} symbols "
              f"({result.n_subpasses} subpasses)")
        print(f"achieved rate    : {result.rate:.2f} bits/symbol")
        print(f"gap to capacity  : {gap_to_capacity_db(result.rate, snr_db):.2f} dB")
        print(f"decode attempts  : {result.n_attempts}")
    else:
        print("decoding failed within the pass budget — lower the rate "
              "expectation (more passes) or raise the SNR")

    # The rateless property: the first symbols of a longer transmission are
    # exactly the shorter transmission (prefix property, §1).
    enc = session.encoder
    one_pass = enc.generate_passes(1).values
    two_passes = enc.generate_passes(2).values
    assert np.array_equal(two_passes[: one_pass.size], one_pass)
    print("prefix property  : verified (higher-rate stream is a prefix)")


if __name__ == "__main__":
    main()
