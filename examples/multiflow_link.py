"""VoIP beside bulk transfer on one fading link (§5, §8.4 protocol view).

Run:  python examples/multiflow_link.py

The paper's motivating deployment is a shared wireless medium: small
latency-critical packets (voice, gaming) competing with bulk transfer.
This example puts both on a single Rayleigh block-fading channel through
the ``repro.link`` scheduler, with real CRC framing and a non-zero
feedback delay, and shows what the service policy does to VoIP latency:

- round-robin interleaves the flows fairly;
- strict priority serves VoIP first whenever it has a packet in flight.

Latencies are in symbol times (multiply by the PHY's symbol period for
wall time).  Note the conservation line: every symbol the channel carried
is attributed to exactly one flow.
"""

from repro import DecoderParams, RayleighBlockFadingChannel, SpinalParams
from repro.link import Flow, LinkConfig, LinkScheduler

SNR_DB = 20.0
FEEDBACK_DELAY = 32     # symbol times
N_VOIP = 4              # 16-byte voice frames
N_BULK = 2              # 96-byte bulk datagrams


def build_flows(params: SpinalParams, dec: DecoderParams) -> list[Flow]:
    cfg = LinkConfig(max_block_bits=512, feedback_delay=FEEDBACK_DELAY,
                     give_csi=True)
    return [
        Flow("voip", params, dec, [bytes(range(16))] * N_VOIP, cfg,
             priority=1),
        Flow("bulk", params, dec, [bytes(96)] * N_BULK, cfg, priority=0),
    ]


def main() -> None:
    params = SpinalParams()
    dec = DecoderParams(B=64, max_passes=30)

    print(f"shared Rayleigh channel @ {SNR_DB:.0f} dB, "
          f"feedback delay {FEEDBACK_DELAY} symbols\n")
    print(f"{'policy':>12} {'flow':>6} {'pkts':>5} {'goodput':>8} "
          f"{'p50 lat':>8} {'p90 lat':>8} {'retx':>5}")

    for policy in ("round_robin", "priority"):
        channel = RayleighBlockFadingChannel(SNR_DB, coherence_time=50,
                                             rng=42)
        report = LinkScheduler(channel, build_flows(params, dec),
                               policy=policy).run()
        assert report.conservation_ok()
        for f in report.flows:
            print(f"{policy:>12} {f.flow:>6} "
                  f"{f.n_delivered}/{f.n_packets:<3} "
                  f"{f.goodput:>8.2f} "
                  f"{f.latency_percentile(50):>8.0f} "
                  f"{f.latency_percentile(90):>8.0f} "
                  f"{f.retransmissions:>5}")
        print(f"{'':>12} {'all':>6} {'':>5} "
              f"{report.aggregate_goodput:>8.2f}   "
              f"(channel: {report.channel_symbols} symbols, "
              f"{report.channel_time} symbol times)")


if __name__ == "__main__":
    main()
