"""Small-packet comparison: the paper's telephony/gaming scenario (§8.2).

Run:  python examples/voip_small_packets.py

"For many Internet applications, including audio and games, the natural
packet size is in the 64-256-byte range."  This example sends VoIP-sized
packets through all four codes of the paper's comparison at one mid-range
SNR and prints the channel time each needs — the regime where spinal codes
beat Strider by 2.5x-10x (Figure 8-3).
"""

from repro import AWGNChannel, DecoderParams, SpinalParams, awgn_capacity
from repro.fountain import RaptorScheme
from repro.ldpc import ldpc_envelope
from repro.obs import clock
from repro.simulation import SpinalScheme, measure_scheme
from repro.strider import StriderScheme

SNR_DB = 15.0
PACKET_BITS = 1024  # a 128-byte VoIP packet
N_PACKETS = 3


def channel_factory(rng):
    return AWGNChannel(SNR_DB, rng=rng)


def main() -> None:
    print(f"packet size {PACKET_BITS} bits, SNR {SNR_DB:.0f} dB "
          f"(capacity {awgn_capacity(SNR_DB):.2f} bits/symbol)\n")

    schemes = [
        SpinalScheme(SpinalParams(), DecoderParams(B=256, max_passes=40),
                     PACKET_BITS, label="spinal"),
        RaptorScheme(k=PACKET_BITS, label="raptor/qam-256"),
        StriderScheme(n_bits=PACKET_BITS, n_layers=8, subpasses_per_pass=4,
                      max_passes=30, label="strider+"),
    ]

    print(f"{'code':>16} {'rate b/s':>9} {'symbols/packet':>15} {'wall s':>7}")
    results = {}
    for scheme in schemes:
        start = clock()
        m = measure_scheme(scheme, channel_factory, SNR_DB, N_PACKETS, seed=9)
        results[scheme.name] = m.rate
        per_packet = m.total_symbols / N_PACKETS
        print(f"{scheme.name:>16} {m.rate:>9.2f} {per_packet:>15.0f} "
              f"{clock() - start:>7.1f}")

    # LDPC is fixed-rate: the envelope picks the best MCS at this SNR.
    tput, label = ldpc_envelope(SNR_DB, n_blocks=6, iterations=40, seed=9)
    print(f"{'ldpc envelope':>16} {tput:>9.2f}   (best MCS: {label})")

    spinal = results["spinal"]
    print(f"\nspinal vs raptor : {spinal / results['raptor/qam-256']:.2f}x")
    print(f"spinal vs strider+: {spinal / results['strider+']:.2f}x")
    print(f"spinal vs ldpc    : {spinal / tput:.2f}x")


if __name__ == "__main__":
    main()
