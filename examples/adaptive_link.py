"""Rate adaptation without bit-rate selection: a mobile link simulation.

Run:  python examples/adaptive_link.py

The paper's motivating scenario (§1): channel conditions vary over time
(a walk past obstacles modelled as an SNR trajectory), and the rateless
code adapts *implicitly* — each frame consumes exactly as many symbols as
the instantaneous channel requires, with no SNR probing, no MCS tables,
and no feedback beyond per-block ACKs.  A fixed-rate system must pick a
conservative rate in advance; we show what that costs.

Uses the §6 link layer: datagrams split into CRC-protected code blocks,
each spinal-encoded independently.
"""

import numpy as np

from repro import AWGNChannel, DecoderParams, FrameDecoder, FrameEncoder, SpinalParams
from repro.channels.capacity import awgn_capacity


def snr_trajectory(n_frames: int) -> np.ndarray:
    """A walk from good to bad coverage and back (dB)."""
    t = np.linspace(0, 2 * np.pi, n_frames)
    return 14.0 + 10.0 * np.cos(t) + 2.0 * np.sin(3.1 * t)


def send_frame(datagram: bytes, snr_db: float, seed: int,
               params: SpinalParams, dec: DecoderParams) -> tuple[int, bool]:
    """Transmit one datagram ratelessly; returns (symbols used, ok)."""
    sender = FrameEncoder(params, max_block_bits=512)
    frame = sender.frame(datagram)
    encoders = sender.encoders(frame)
    receiver = FrameDecoder(params, dec, frame.sequence, len(datagram),
                            max_block_bits=512)
    channel = AWGNChannel(snr_db, rng=seed)
    symbols = 0
    for subpass in range(dec.max_passes * 8):
        for b, enc in enumerate(encoders):
            if receiver.ack_bitmap[b]:
                continue
            block = enc.generate(subpass)
            out = channel.transmit(block.values)
            receiver.receive_block_symbols(b, block, out.values)
            symbols += len(block)
        receiver.try_decode_all()
        if receiver.complete:
            assert receiver.reassemble() == datagram
            return symbols, True
    return symbols, False


def main() -> None:
    params = SpinalParams()
    dec = DecoderParams(B=64, max_passes=30)
    payload = bytes(range(64))  # 64-byte datagram per frame

    snrs = snr_trajectory(12)
    total_bits = 0
    total_symbols = 0
    print(f"{'frame':>5} {'SNR dB':>7} {'capacity':>9} "
          f"{'symbols':>8} {'rate':>6}")
    for i, snr in enumerate(snrs):
        symbols, ok = send_frame(payload, snr, seed=100 + i, params=params,
                                 dec=dec)
        bits = len(payload) * 8 if ok else 0
        total_bits += bits
        total_symbols += symbols
        rate = bits / symbols if symbols else 0.0
        print(f"{i:>5} {snr:>7.1f} {awgn_capacity(snr):>9.2f} "
              f"{symbols:>8} {rate:>6.2f}")

    adaptive = total_bits / total_symbols
    print(f"\nrateless link throughput : {adaptive:.2f} bits/symbol")

    # A fixed-rate design must survive the trajectory's worst SNR; the
    # conservative choice is the capacity at the minimum (~4 dB).
    worst = float(snrs.min())
    fixed = awgn_capacity(worst) * 0.8  # a good rated code at min SNR
    print(f"fixed-rate (worst-case)  : {fixed:.2f} bits/symbol")
    print(f"rateless advantage       : {adaptive / fixed:.2f}x "
          "(no probing, no MCS tables)")


if __name__ == "__main__":
    main()
